// Command tspdbd is the network daemon of the probabilistic time-series
// database: it serves the engine's ingest, query and probabilistic-view
// surfaces over HTTP/JSON to concurrent clients.
//
// Usage:
//
//	tspdbd [-addr :8080] [-data-dir dir] [-fsync=true] \
//	       [-load table=path.csv]... [-restore snap] \
//	       [-snapshot snap] [-snapshot-on-exit] [-parallel N] \
//	       [-max-builds N] [-max-batch N]
//
// -data-dir makes the daemon durable: the catalog is recovered from the
// directory on start (write-ahead log replay over checkpointed segment
// files) and every acknowledged mutation — table creation, ingest step,
// view materialisation — is logged before the response is sent, so a
// crash (even SIGKILL) loses nothing that was acknowledged. -fsync
// (default true) additionally syncs the log on every commit, extending
// the guarantee from process death to power loss. POST /checkpoint
// flushes the log into segments on demand; a byte-threshold background
// checkpointer does the same automatically.
//
// -restore loads a gob snapshot (written by POST /snapshot, GET /snapshot or
// tspdb) before serving; combined with -data-dir the loaded catalog is
// immediately checkpointed, making the import durable. -snapshot names the
// path POST /snapshot writes to; with -snapshot-on-exit the daemon also
// persists there on graceful shutdown (SIGINT/SIGTERM). The gob snapshot
// surface is kept alongside -data-dir as a portable export/import format.
//
// Range aggregates over views (GET /views/{v}/rangeprob?from=&to=, SELECT
// EXPECTED/PROB/... via POST /query) run as one indexed pass over the
// view's timestamp group index. Ingest batches whose timestamps do not
// continue the stream answer 409 (conflict: resume past the last accepted
// timestamp), never 400.
//
// See DESIGN.md for the endpoint table; quick start:
//
//	tspdbd -addr :8080 -load raw_values=campus.csv &
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/query -d '{"q":"CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=8 FROM raw_values WHERE t >= 100 AND t <= 200"}'
//	curl 'localhost:8080/views/pv/topk?t=150&k=3'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
)

type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var loads loadFlags
	flag.Var(&loads, "load", "table=csvfile pair; repeatable")
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + segments); empty = in-memory")
	fsync := flag.Bool("fsync", true, "sync the WAL on every commit (with -data-dir)")
	restore := flag.String("restore", "", "load a catalog snapshot before serving")
	snapshot := flag.String("snapshot", "", "path POST /snapshot persists the catalog to")
	snapOnExit := flag.Bool("snapshot-on-exit", false, "write a snapshot on graceful shutdown (requires -snapshot)")
	parallel := flag.Int("parallel", 0, "view-generation workers (0 = all cores, 1 = sequential)")
	maxBuilds := flag.Int("max-builds", 2, "concurrent CREATE VIEW materialisations")
	maxBatch := flag.Int("max-batch", 10000, "max points per ingest request")
	grace := flag.Duration("grace", 10*time.Second, "graceful-shutdown timeout")
	flag.Parse()

	cfg := repro.EngineConfig{Parallelism: *parallel, DataDir: *dataDir, Fsync: *fsync}
	if err := run(loads, *addr, cfg, *restore, *snapshot, *snapOnExit, *maxBuilds, *maxBatch, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "tspdbd:", err)
		os.Exit(1)
	}
}

func run(loads loadFlags, addr string, cfg repro.EngineConfig, restore, snapshot string, snapOnExit bool, maxBuilds, maxBatch int, grace time.Duration) error {
	if snapOnExit && snapshot == "" {
		return fmt.Errorf("-snapshot-on-exit requires -snapshot")
	}
	engine, err := repro.OpenEngine(cfg)
	if err != nil {
		return fmt.Errorf("open data dir %s: %w", cfg.DataDir, err)
	}
	defer engine.Close()
	if engine.Durable() {
		log.Printf("durable catalog at %s: recovered %d table(s) (fsync=%v)",
			cfg.DataDir, len(engine.DB().List()), cfg.Fsync)
	}
	if restore != "" {
		if err := engine.DB().LoadFile(restore); err != nil {
			return fmt.Errorf("restore %s: %w", restore, err)
		}
		log.Printf("restored %d table(s) from %s", len(engine.DB().List()), restore)
		if engine.Durable() {
			// Fold the imported catalog into segments right away so the
			// replacement does not live only in the WAL.
			if err := engine.Checkpoint(); err != nil {
				return fmt.Errorf("checkpoint after restore: %w", err)
			}
		}
	}
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -load %q (want table=path.csv)", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		s, err := repro.ReadSeriesCSV(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := engine.RegisterSeries(name, s); err != nil {
			return err
		}
		log.Printf("loaded %s: %d rows", name, s.Len())
	}

	srv := repro.NewServer(engine, repro.ServerConfig{
		SnapshotPath:  snapshot,
		MaxViewBuilds: maxBuilds,
		MaxBatch:      maxBatch,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("tspdbd listening on %s", addr)
	if err := srv.Run(ctx, addr, grace); err != nil {
		return err
	}
	if err := engine.Close(); err != nil {
		return fmt.Errorf("close data dir: %w", err)
	}
	log.Printf("tspdbd shut down cleanly")
	if snapOnExit {
		n, err := engine.DB().SaveFile(snapshot)
		if err != nil {
			return fmt.Errorf("exit snapshot: %w", err)
		}
		log.Printf("wrote exit snapshot %s (%d bytes)", snapshot, n)
	}
	return nil
}
