// Command tspdbd is the network daemon of the probabilistic time-series
// database: it serves the engine's ingest, query and probabilistic-view
// surfaces over HTTP/JSON to concurrent clients.
//
// Usage:
//
//	tspdbd [-addr :8080] [-load table=path.csv]... [-restore snap] \
//	       [-snapshot snap] [-snapshot-on-exit] [-parallel N] \
//	       [-max-builds N] [-max-batch N]
//
// -restore loads a gob snapshot (written by POST /snapshot, GET /snapshot or
// tspdb) before serving. -snapshot names the path POST /snapshot writes to;
// with -snapshot-on-exit the daemon also persists there on graceful
// shutdown (SIGINT/SIGTERM).
//
// Range aggregates over views (GET /views/{v}/rangeprob?from=&to=, SELECT
// EXPECTED/PROB/... via POST /query) run as one indexed pass over the
// view's timestamp group index. Ingest batches whose timestamps do not
// continue the stream answer 409 (conflict: resume past the last accepted
// timestamp), never 400.
//
// See DESIGN.md for the endpoint table; quick start:
//
//	tspdbd -addr :8080 -load raw_values=campus.csv &
//	curl localhost:8080/healthz
//	curl -X POST localhost:8080/query -d '{"q":"CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=8 FROM raw_values WHERE t >= 100 AND t <= 200"}'
//	curl 'localhost:8080/views/pv/topk?t=150&k=3'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
)

type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var loads loadFlags
	flag.Var(&loads, "load", "table=csvfile pair; repeatable")
	addr := flag.String("addr", ":8080", "listen address")
	restore := flag.String("restore", "", "load a catalog snapshot before serving")
	snapshot := flag.String("snapshot", "", "path POST /snapshot persists the catalog to")
	snapOnExit := flag.Bool("snapshot-on-exit", false, "write a snapshot on graceful shutdown (requires -snapshot)")
	parallel := flag.Int("parallel", 0, "view-generation workers (0 = all cores, 1 = sequential)")
	maxBuilds := flag.Int("max-builds", 2, "concurrent CREATE VIEW materialisations")
	maxBatch := flag.Int("max-batch", 10000, "max points per ingest request")
	grace := flag.Duration("grace", 10*time.Second, "graceful-shutdown timeout")
	flag.Parse()

	if err := run(loads, *addr, *restore, *snapshot, *snapOnExit, *parallel, *maxBuilds, *maxBatch, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "tspdbd:", err)
		os.Exit(1)
	}
}

func run(loads loadFlags, addr, restore, snapshot string, snapOnExit bool, parallel, maxBuilds, maxBatch int, grace time.Duration) error {
	if snapOnExit && snapshot == "" {
		return fmt.Errorf("-snapshot-on-exit requires -snapshot")
	}
	engine := repro.NewEngineWith(repro.EngineConfig{Parallelism: parallel})
	if restore != "" {
		if err := engine.DB().LoadFile(restore); err != nil {
			return fmt.Errorf("restore %s: %w", restore, err)
		}
		log.Printf("restored %d table(s) from %s", len(engine.DB().List()), restore)
	}
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -load %q (want table=path.csv)", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		s, err := repro.ReadSeriesCSV(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := engine.RegisterSeries(name, s); err != nil {
			return err
		}
		log.Printf("loaded %s: %d rows", name, s.Len())
	}

	srv := repro.NewServer(engine, repro.ServerConfig{
		SnapshotPath:  snapshot,
		MaxViewBuilds: maxBuilds,
		MaxBatch:      maxBatch,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("tspdbd listening on %s", addr)
	err := srv.Run(ctx, addr, grace)
	if err != nil {
		return err
	}
	log.Printf("tspdbd shut down cleanly")
	if snapOnExit {
		n, err := engine.DB().SaveFile(snapshot)
		if err != nil {
			return fmt.Errorf("exit snapshot: %w", err)
		}
		log.Printf("wrote exit snapshot %s (%d bytes)", snapshot, n)
	}
	return nil
}
