// Command datagen materialises the synthetic evaluation datasets (the
// stand-ins for the paper's campus-data and car-data, see
// internal/dataset) as CSV files, optionally with injected erroneous values.
//
// Usage:
//
//	datagen -dataset campus -out campus.csv [-n 18031] [-seed 1]
//	datagen -dataset car -out car.csv [-errors 25 -magnitude 25]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/timeseries"
)

func main() {
	ds := flag.String("dataset", "campus", "dataset to generate: campus or car")
	out := flag.String("out", "", "output CSV path (default stdout)")
	n := flag.Int("n", 0, "number of samples (0 = paper size)")
	seed := flag.Int64("seed", 0, "PRNG seed (0 = default)")
	errCount := flag.Int("errors", 0, "number of erroneous values to inject")
	magnitude := flag.Float64("magnitude", 25, "error magnitude in stddevs from the mean")
	errSeed := flag.Int64("errseed", 42, "PRNG seed for error injection")
	flag.Parse()

	if err := run(*ds, *out, *n, *seed, *errCount, *magnitude, *errSeed); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(ds, out string, n int, seed int64, errCount int, magnitude float64, errSeed int64) error {
	var s *timeseries.Series
	switch ds {
	case "campus":
		s = dataset.Campus(dataset.CampusConfig{N: n, Seed: seed})
	case "car":
		s = dataset.Car(dataset.CarConfig{N: n, Seed: seed})
	default:
		return fmt.Errorf("unknown dataset %q (want campus or car)", ds)
	}

	if errCount > 0 {
		dirty, injs, err := dataset.InjectErrors(s, errCount, magnitude, 0, errSeed)
		if err != nil {
			return err
		}
		s = dirty
		fmt.Fprintf(os.Stderr, "injected %d erroneous values (first at index %d)\n",
			len(injs), injs[0].Index)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := s.WriteCSV(w); err != nil {
		return err
	}
	if out != "" {
		sum, err := s.Summarize()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d samples, range [%.2f, %.2f]\n",
			out, sum.N, sum.Min, sum.Max)
	}
	return nil
}
