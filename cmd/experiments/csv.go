package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
)

// writeCSV renders a slice of flat structs as <dir>/<name>.csv with one
// column per exported field, so the figures can be re-plotted with any
// external tool.
func writeCSV(dir, name string, rows any) error {
	v := reflect.ValueOf(rows)
	if v.Kind() != reflect.Slice {
		return fmt.Errorf("writeCSV: %s: not a slice", name)
	}
	if v.Len() == 0 {
		return fmt.Errorf("writeCSV: %s: no rows", name)
	}
	elemType := v.Index(0).Type()
	if elemType.Kind() != reflect.Struct {
		return fmt.Errorf("writeCSV: %s: not a slice of structs", name)
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)

	var header []string
	for i := 0; i < elemType.NumField(); i++ {
		if elemType.Field(i).IsExported() {
			header = append(header, elemType.Field(i).Name)
		}
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for r := 0; r < v.Len(); r++ {
		row := v.Index(r)
		var rec []string
		for i := 0; i < elemType.NumField(); i++ {
			if !elemType.Field(i).IsExported() {
				continue
			}
			rec = append(rec, formatField(row.Field(i)))
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func formatField(fv reflect.Value) string {
	switch fv.Kind() {
	case reflect.Float64, reflect.Float32:
		return strconv.FormatFloat(fv.Float(), 'g', -1, 64)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.FormatInt(fv.Int(), 10)
	case reflect.Bool:
		return strconv.FormatBool(fv.Bool())
	case reflect.String:
		return fv.String()
	default:
		return fmt.Sprintf("%v", fv.Interface())
	}
}
