// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section VII). Each experiment prints the same rows/series the
// paper reports; run with -full to use the paper's scale.
//
// Usage:
//
//	experiments -run all            # every experiment at quick scale
//	experiments -run fig10 -full    # one experiment at the paper's scale
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
)

type runner struct {
	name string
	desc string
	fn   func(experiments.Scale) error
}

func main() {
	runName := flag.String("run", "all", "experiment to run (or 'all')")
	full := flag.Bool("full", false, "use the paper's full-scale parameters")
	list := flag.Bool("list", false, "list available experiments")
	flag.StringVar(&csvDir, "csv", "", "also write each experiment's rows as CSV into this directory")
	flag.Parse()

	runners := allRunners()
	if *list {
		for _, r := range runners {
			fmt.Printf("%-9s %s\n", r.name, r.desc)
		}
		return
	}

	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	fmt.Printf("# scale: %s (campus %d, car %d samples)\n\n", scale.Name, scale.CampusN, scale.CarN)

	var failed bool
	for _, r := range runners {
		if *runName != "all" && !strings.EqualFold(*runName, r.name) {
			continue
		}
		fmt.Printf("== %s: %s ==\n", r.name, r.desc)
		if err := r.fn(scale); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			failed = true
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

// csvDir, when non-empty, receives one CSV file per executed experiment.
var csvDir string

// alsoCSV writes rows to csvDir when enabled.
func alsoCSV(name string, rows any) error {
	if csvDir == "" {
		return nil
	}
	return writeCSV(csvDir, name, rows)
}

func allRunners() []runner {
	return []runner{
		{"tableII", "dataset summary (Table II)", runTableII},
		{"fig4", "regions of changing volatility (Fig. 4)", runFig4},
		{"fig5", "GARCH failure vs C-GARCH recovery on erroneous values (Fig. 5)", runFig5},
		{"fig10", "density distance of the dynamic density metrics vs window size (Fig. 10)", runFig10},
		{"fig11", "average inference time of the metrics vs window size (Fig. 11)", runFig11},
		{"fig12", "effect of ARMA model order on density distance (Fig. 12)", runFig12},
		{"fig13", "C-GARCH vs GARCH erroneous-value detection (Fig. 13)", runFig13},
		{"fig14a", "view generation time, naive vs sigma-cache (Fig. 14a)", runFig14a},
		{"fig14b", "sigma-cache size vs maximum ratio threshold (Fig. 14b)", runFig14b},
		{"fig15", "time-varying volatility test Phi(m) vs chi-square (Fig. 15)", runFig15},
	}
}

func runTableII(s experiments.Scale) error {
	rows, err := experiments.TableII(s)
	if err != nil {
		return err
	}
	if err := alsoCSV("tableII", rows); err != nil {
		return err
	}
	fmt.Printf("%-12s %-12s %8s %-14s %-12s %10s %10s\n",
		"dataset", "parameter", "values", "accuracy", "interval", "min", "max")
	for _, r := range rows {
		fmt.Printf("%-12s %-12s %8d %-14s %-12s %10.2f %10.2f\n",
			r.Name, r.Parameter, r.N, r.SensorAccuracy, r.SamplingInterval, r.Min, r.Max)
	}
	return nil
}

func runFig4(s experiments.Scale) error {
	rows, err := experiments.Fig4(s)
	if err != nil {
		return err
	}
	if err := alsoCSV("fig4", rows); err != nil {
		return err
	}
	// Summarise: per dataset, the variance quartiles (the full series is a
	// plot; the table shows the regime contrast).
	byDS := map[string][]float64{}
	for _, r := range rows {
		byDS[r.Dataset] = append(byDS[r.Dataset], r.Variance)
	}
	fmt.Printf("%-8s %8s %12s %12s %12s\n", "dataset", "windows", "min var", "median var", "max var")
	for _, ds := range []string{"campus", "car"} {
		vs := byDS[ds]
		sort.Float64s(vs)
		fmt.Printf("%-8s %8d %12.4f %12.4f %12.4f\n",
			ds, len(vs), vs[0], vs[len(vs)/2], vs[len(vs)-1])
	}
	fmt.Println("(high-vs-low contrast = the Region A / Region B structure of Fig. 4)")
	return nil
}

func runFig5(s experiments.Scale) error {
	rows, err := experiments.Fig5(s)
	if err != nil {
		return err
	}
	if err := alsoCSV("fig5", rows); err != nil {
		return err
	}
	fmt.Printf("%6s %9s %4s | %9s %9s %9s | %9s %9s %9s %s\n",
		"t", "raw", "inj", "g.rhat", "g.lb", "g.ub", "c.rhat", "c.lb", "c.ub", "c.err")
	for i, r := range rows {
		// Print the interesting region: around injections and every 20th row.
		if !r.Injected && i%20 != 0 && !near(rows, i) {
			continue
		}
		inj := ""
		if r.Injected {
			inj = "<<<"
		}
		cerr := ""
		if r.CGARCHErroneous {
			cerr = "detected"
		}
		fmt.Printf("%6d %9.2f %4s | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f %s\n",
			r.T, r.Raw, inj, r.GARCHRHat, r.GARCHLB, r.GARCHUB,
			r.CGARCHRHat, r.CGARCHLB, r.CGARCHUB, cerr)
	}
	return nil
}

// near reports whether index i is within 3 rows of an injection.
func near(rows []experiments.Fig5Row, i int) bool {
	for d := -3; d <= 3; d++ {
		j := i + d
		if j >= 0 && j < len(rows) && rows[j].Injected {
			return true
		}
	}
	return false
}

func runFig10(s experiments.Scale) error {
	rows, err := experiments.Fig10(s)
	if err != nil {
		return err
	}
	if err := alsoCSV("fig10", rows); err != nil {
		return err
	}
	fmt.Printf("%-8s %4s %14s %14s %14s %14s\n", "dataset", "H", "UT", "VT", "ARMA-GARCH", "Kalman-GARCH")
	printMetricGrid(len(s.Windows), s.Windows, rows, func(r experiments.Fig10Row) (string, int, string, float64) {
		return r.Dataset, r.H, r.Metric, r.Distance
	})
	return nil
}

func runFig11(s experiments.Scale) error {
	rows, err := experiments.Fig11(s)
	if err != nil {
		return err
	}
	if err := alsoCSV("fig11", rows); err != nil {
		return err
	}
	fmt.Printf("%-8s %4s %14s %14s %14s %14s   (seconds per inference)\n",
		"dataset", "H", "UT", "VT", "ARMA-GARCH", "Kalman-GARCH")
	printMetricGrid(len(s.Windows), s.Windows, rows, func(r experiments.Fig11Row) (string, int, string, float64) {
		return r.Dataset, r.H, r.Metric, r.AvgInferSec
	})
	return nil
}

// printMetricGrid renders dataset x H rows with one column per metric.
func printMetricGrid[T any](_ int, windows []int, rows []T, get func(T) (string, int, string, float64)) {
	type cell struct {
		ds string
		h  int
	}
	grid := map[cell]map[string]float64{}
	for _, r := range rows {
		ds, h, metric, v := get(r)
		k := cell{ds, h}
		if grid[k] == nil {
			grid[k] = map[string]float64{}
		}
		grid[k][metric] = v
	}
	for _, ds := range []string{"campus", "car"} {
		for _, h := range windows {
			m := grid[cell{ds, h}]
			if m == nil {
				continue
			}
			fmt.Printf("%-8s %4d %14.6f %14.6f %14.6f %14.6f\n",
				ds, h, m["UT"], m["VT"], m["ARMA-GARCH"], m["Kalman-GARCH"])
		}
	}
}

func runFig12(s experiments.Scale) error {
	rows, err := experiments.Fig12(s)
	if err != nil {
		return err
	}
	if err := alsoCSV("fig12", rows); err != nil {
		return err
	}
	grid := map[int]map[string]float64{}
	for _, r := range rows {
		if grid[r.P] == nil {
			grid[r.P] = map[string]float64{}
		}
		grid[r.P][r.Metric] = r.Distance
	}
	fmt.Printf("%5s %14s %14s %14s\n", "p", "UT", "VT", "ARMA-GARCH")
	for _, p := range s.ModelOrders {
		m := grid[p]
		fmt.Printf("%5d %14.4f %14.4f %14.4f\n", p, m["UT"], m["VT"], m["ARMA-GARCH"])
	}
	return nil
}

func runFig13(s experiments.Scale) error {
	rows, err := experiments.Fig13(s)
	if err != nil {
		return err
	}
	if err := alsoCSV("fig13", rows); err != nil {
		return err
	}
	fmt.Printf("%8s %10s %18s %18s\n", "errors", "method", "captured (%)", "sec/value")
	for _, r := range rows {
		fmt.Printf("%8d %10s %18.1f %18.6f\n", r.ErrorCount, r.Method, r.PercentCaptured, r.AvgTimeSec)
	}
	return nil
}

func runFig14a(s experiments.Scale) error {
	rows, err := experiments.Fig14a(s)
	if err != nil {
		return err
	}
	if err := alsoCSV("fig14a", rows); err != nil {
		return err
	}
	fmt.Printf("%10s %13s %13s %9s\n", "tuples", "naive (ms)", "cache (ms)", "speedup")
	bys := map[int]map[string]experiments.Fig14aRow{}
	var sizes []int
	for _, r := range rows {
		if bys[r.DBSize] == nil {
			bys[r.DBSize] = map[string]experiments.Fig14aRow{}
			sizes = append(sizes, r.DBSize)
		}
		bys[r.DBSize][r.Method] = r
	}
	sort.Ints(sizes)
	for _, size := range sizes {
		n := bys[size]["naive"]
		c := bys[size]["sigma-cache"]
		fmt.Printf("%10d %13.2f %13.2f %8.1fx\n", size, n.TimeMS, c.TimeMS, c.Speedup)
	}
	return nil
}

func runFig14b(s experiments.Scale) error {
	rows, err := experiments.Fig14b(s)
	if err != nil {
		return err
	}
	if err := alsoCSV("fig14b", rows); err != nil {
		return err
	}
	fmt.Printf("%12s %10s %14s\n", "max ratio Ds", "entries", "cache (KiB)")
	for _, r := range rows {
		fmt.Printf("%12.0f %10d %14.1f\n", r.MaxRatio, r.Entries, r.CacheKB)
	}
	fmt.Println("(entries grow by a constant per doubling of Ds: logarithmic scaling)")
	return nil
}

func runFig15(s experiments.Scale) error {
	rows, err := experiments.Fig15(s)
	if err != nil {
		return err
	}
	if err := alsoCSV("fig15", rows); err != nil {
		return err
	}
	fmt.Printf("%-8s %3s %12s %12s %8s\n", "dataset", "m", "Phi(m)", "chi2_m(.05)", "reject")
	for _, r := range rows {
		fmt.Printf("%-8s %3d %12.2f %12.2f %8v\n", r.Dataset, r.M, r.Statistic, r.Critical, r.Reject)
	}
	return nil
}
