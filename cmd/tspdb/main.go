// Command tspdb is an interactive shell (and one-shot runner) for the
// probabilistic time-series database: import raw values from CSV, run
// probabilistic view generation queries (Fig. 7 syntax), inspect results.
//
// Usage:
//
//	tspdb -load table=path.csv [-load table2=path2.csv] [-exec "QUERY"] [-out view.csv] [-parallel N] [-server URL]
//
// Without -exec the tool reads statements from stdin, one per line.
// -parallel sets the worker count for view generation and for the parallel
// read kernels behind EXPECTED/PROB/COUNT (0 = all cores, 1 = sequential);
// results are identical at every setting.
// With -server URL the shell becomes a thin client of a running tspdbd:
// -load uploads the CSVs and statements execute remotely via POST /query.
//
// A failing -exec statement exits non-zero; syntax errors point at the
// offending position:
//
//	tspdb: query: syntax error at position 8: expected VIEW, found "VEIW"
//	  CREATE VEIW pv AS ...
//	          ^
//
// Example:
//
//	tspdb -load raw_values=campus.csv \
//	      -exec "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=8 \
//	             WINDOW 90 CACHE DISTANCE 0.01 FROM raw_values WHERE t >= 100 AND t <= 500" \
//	      -out pv.csv
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/view"
)

type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var loads loadFlags
	flag.Var(&loads, "load", "table=csvfile pair; repeatable")
	exec := flag.String("exec", "", "statement to execute (omit for interactive mode)")
	out := flag.String("out", "", "write the created view as CSV to this file")
	parallel := flag.Int("parallel", 0, "view-generation and read-kernel workers (0 = all cores, 1 = sequential)")
	serverURL := flag.String("server", "", "tspdbd base URL; run as a thin client instead of in-process")
	flag.Parse()

	if err := run(loads, *exec, *out, *parallel, *serverURL); err != nil {
		fmt.Fprintln(os.Stderr, "tspdb:", formatError(err, *exec))
		os.Exit(1)
	}
}

// formatError renders a statement failure; syntax errors gain a caret line
// pointing at the offending position of stmt. In thin-client mode a 409
// from the server is labelled as a resumable conflict (out-of-order ingest
// timestamp, duplicate table/stream) so it is not mistaken for a malformed
// statement.
func formatError(err error, stmt string) string {
	var syn *query.SyntaxError
	if stmt != "" && errors.As(err, &syn) && syn.Pos >= 0 && syn.Pos <= len(stmt) {
		return fmt.Sprintf("%v\n  %s\n  %s^", err, stmt, strings.Repeat(" ", syn.Pos))
	}
	var apiErr *server.APIError
	if errors.As(err, &apiErr) && apiErr.Conflict() {
		return fmt.Sprintf("conflict with server state (resume past it, e.g. ingest a later timestamp): %v", err)
	}
	return err.Error()
}

// executor abstracts where a statement runs: the in-process engine or a
// remote tspdbd via the thin client.
type executor func(stmt, out string) error

func run(loads loadFlags, exec, out string, parallel int, serverURL string) error {
	// load registers one opened CSV under a table name, returning the row
	// count and the action verb for the progress line.
	var load func(name string, f *os.File) (int, string, error)
	var execute executor
	if serverURL != "" {
		if parallel != 0 {
			fmt.Fprintln(os.Stderr, "tspdb: -parallel is ignored with -server (set it on tspdbd)")
		}
		client := server.NewClient(strings.TrimRight(serverURL, "/"))
		load = func(name string, f *os.File) (int, string, error) {
			resp, err := client.CreateTableCSV(name, f)
			if err != nil {
				return 0, "", err
			}
			return resp.Rows, "uploaded", nil
		}
		execute = func(stmt, out string) error { return executeRemote(client, stmt, out) }
	} else {
		engine := repro.NewEngineWith(repro.EngineConfig{Parallelism: parallel})
		load = func(name string, f *os.File) (int, string, error) {
			s, err := repro.ReadSeriesCSV(f)
			if err != nil {
				return 0, "", err
			}
			if err := engine.RegisterSeries(name, s); err != nil {
				return 0, "", err
			}
			return s.Len(), "loaded", nil
		}
		execute = func(stmt, out string) error { return executeLocal(engine, stmt, out) }
	}

	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -load %q (want table=path.csv)", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		rows, verb, err := load(name, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s %s: %d rows\n", verb, name, rows)
	}

	if exec != "" {
		return execute(exec, out)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("tspdb: enter statements, one per line (Ctrl-D to quit)")
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit") {
			return nil
		}
		if err := execute(line, out); err != nil {
			fmt.Fprintln(os.Stderr, "error:", formatError(err, line))
		}
	}
}

// executeRemote runs one statement on a tspdbd and prints its result.
func executeRemote(client *server.Client, stmt, out string) error {
	res, err := client.Exec(stmt)
	if err != nil {
		return err
	}
	switch res.Kind {
	case "view":
		v := res.View
		fmt.Printf("created view %q: %d rows (metric %s, delta=%g, n=%d)\n",
			v.Name, v.Rows, v.Metric, v.Delta, v.N)
		if res.Cache != nil {
			fmt.Printf("sigma-cache: %d entries, %d hits, %d misses, ~%d KiB\n",
				res.Cache.Entries, res.Cache.Hits, res.Cache.Misses, res.Cache.ApproxBytes/1024)
		}
		if out != "" {
			if err := writeRemoteViewCSV(client, v.Name, out); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
	case "rows":
		printRows(res.Columns, res.Rows)
	default:
		fmt.Println("ok")
	}
	fmt.Printf("(%.3fms)\n", res.ElapsedMS)
	return nil
}

func writeRemoteViewCSV(client *server.Client, viewName, path string) error {
	rows, err := client.AllViewRows(viewName)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "t,lambda,lo,hi,prob")
	for _, r := range rows.Rows {
		fmt.Fprintf(f, "%d,%d,%g,%g,%g\n", r.T, r.Lambda, r.Lo, r.Hi, r.Prob)
	}
	return nil
}

// executeLocal runs one statement on the in-process engine and prints its
// result.
func executeLocal(engine *repro.Engine, stmt, out string) error {
	res, err := engine.Exec(stmt)
	if err != nil {
		return err
	}
	switch res.Kind {
	case "view":
		printViewSummary(res)
		if out != "" {
			if err := writeViewCSV(res.View, out); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
	case "rows":
		printRows(res.Columns, res.Rows)
	default:
		fmt.Println("ok")
	}
	fmt.Printf("(%s)\n", res.Elapsed.Round(10*time.Microsecond))
	return nil
}

func printViewSummary(res *query.Result) {
	v := res.View
	fmt.Printf("created view %q: %d tuples x %d ranges = %d rows (metric %s, delta=%g)\n",
		v.Name, len(v.Times()), v.Omega.N, v.NumRows(), v.MetricName, v.Omega.Delta)
	if res.CacheStats != nil {
		st := res.CacheStats
		fmt.Printf("sigma-cache: %d entries, %d hits, %d misses, ~%d KiB\n",
			st.Entries, st.Hits, st.Misses, st.ApproxBytes/1024)
	}
}

func printRows(cols []string, rows [][]string) {
	fmt.Println(strings.Join(cols, "\t"))
	for _, r := range rows {
		fmt.Println(strings.Join(r, "\t"))
	}
	fmt.Printf("%d row(s)\n", len(rows))
}

func writeViewCSV(p *storage.ProbTable, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	v := &view.View{Omega: p.Omega, Rows: p.SnapshotRows()}
	return v.WriteCSV(f)
}
