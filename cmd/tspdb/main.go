// Command tspdb is an interactive shell (and one-shot runner) for the
// probabilistic time-series database: import raw values from CSV, run
// probabilistic view generation queries (Fig. 7 syntax), inspect results.
//
// Usage:
//
//	tspdb -load table=path.csv [-load table2=path2.csv] [-exec "QUERY"] [-out view.csv] [-parallel N]
//
// Without -exec the tool reads statements from stdin, one per line.
// -parallel sets the view-generation worker count (0 = all cores,
// 1 = sequential); the materialised rows are identical at every setting.
//
// Example:
//
//	tspdb -load raw_values=campus.csv \
//	      -exec "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=8 \
//	             WINDOW 90 CACHE DISTANCE 0.01 FROM raw_values WHERE t >= 100 AND t <= 500" \
//	      -out pv.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/view"
)

type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var loads loadFlags
	flag.Var(&loads, "load", "table=csvfile pair; repeatable")
	exec := flag.String("exec", "", "statement to execute (omit for interactive mode)")
	out := flag.String("out", "", "write the created view as CSV to this file")
	parallel := flag.Int("parallel", 0, "view-generation workers (0 = all cores, 1 = sequential)")
	flag.Parse()

	if err := run(loads, *exec, *out, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "tspdb:", err)
		os.Exit(1)
	}
}

func run(loads loadFlags, exec, out string, parallel int) error {
	engine := repro.NewEngineWith(repro.EngineConfig{Parallelism: parallel})
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -load %q (want table=path.csv)", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		s, err := repro.ReadSeriesCSV(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := engine.RegisterSeries(name, s); err != nil {
			return err
		}
		fmt.Printf("loaded %s: %d rows\n", name, s.Len())
	}

	if exec != "" {
		return execute(engine, exec, out)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("tspdb: enter statements, one per line (Ctrl-D to quit)")
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit") {
			return nil
		}
		if err := execute(engine, line, out); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}

func execute(engine *repro.Engine, stmt, out string) error {
	res, err := engine.Exec(stmt)
	if err != nil {
		return err
	}
	switch res.Kind {
	case "view":
		printViewSummary(res)
		if out != "" {
			if err := writeViewCSV(res.View, out); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
	case "rows":
		printRows(res.Columns, res.Rows)
	default:
		fmt.Println("ok")
	}
	fmt.Printf("(%s)\n", res.Elapsed.Round(10*time.Microsecond))
	return nil
}

func printViewSummary(res *query.Result) {
	v := res.View
	fmt.Printf("created view %q: %d tuples x %d ranges = %d rows (metric %s, delta=%g)\n",
		v.Name, len(v.Times()), v.Omega.N, len(v.Rows), v.MetricName, v.Omega.Delta)
	if res.CacheStats != nil {
		st := res.CacheStats
		fmt.Printf("sigma-cache: %d entries, %d hits, %d misses, ~%d KiB\n",
			st.Entries, st.Hits, st.Misses, st.ApproxBytes/1024)
	}
}

func printRows(cols []string, rows [][]string) {
	fmt.Println(strings.Join(cols, "\t"))
	for _, r := range rows {
		fmt.Println(strings.Join(r, "\t"))
	}
	fmt.Printf("%d row(s)\n", len(rows))
}

func writeViewCSV(p *storage.ProbTable, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	v := &view.View{Omega: p.Omega, Rows: p.Rows}
	return v.WriteCSV(f)
}
