// Command benchgate turns `go test -bench -json` output into a stable,
// diffable benchmark schema and gates CI on regressions against a
// committed baseline.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem -count=5 -json ./... | benchgate parse -o BENCH.json
//	benchgate compare -baseline BENCH_BASELINE.json -current BENCH.json -tolerance 0.25
//
// parse reads the test2json stream on stdin, extracts every benchmark
// result line, and aggregates repeated runs (from -count=N) into one entry
// per benchmark: minimum ns/op, minimum B/op and allocs/op, maximum
// rows/s. Min-of-runs is the standard noise filter for shared CI runners —
// a benchmark cannot run faster than the machine allows, so the minimum is
// the least-noisy observation.
//
// compare loads two parse outputs and fails (exit 1) when any benchmark
// present in the baseline regresses beyond the tolerance: ns/op grew by
// more than tolerance×baseline, or allocs/op grew by more than
// tolerance×baseline plus one (the absolute slack keeps 0→1 alloc churn
// from tripping a percentage-only gate). Benchmarks that exist only in the
// current file are reported as new but never gated; benchmarks missing
// from the current file fail the gate unless -allow-missing is set.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one aggregated benchmark entry. Zero-valued optional metrics
// (rows/s, B/op, allocs/op) mean the benchmark did not report them.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Runs        int     `json:"runs"`
}

// File is the on-disk schema produced by parse and consumed by compare.
type File struct {
	SchemaVersion int               `json:"schema_version"`
	Benchmarks    map[string]Result `json:"benchmarks"`
}

// testEvent is the subset of the test2json event stream we care about.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "parse":
		err = runParse(os.Args[2:])
	case "compare":
		err = runCompare(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchgate parse [-o out.json]                          # reads go test -json on stdin
  benchgate compare -baseline a.json -current b.json [-tolerance 0.25] [-allow-missing]`)
}

func runParse(args []string) error {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	file, err := ParseStream(os.Stdin)
	if err != nil {
		return err
	}
	if len(file.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results found in input")
	}
	enc, err := MarshalFile(file)
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "", "baseline JSON (required)")
	curPath := fs.String("current", "", "current JSON (required)")
	tol := fs.Float64("tolerance", 0.25, "allowed fractional ns/op regression")
	allowMissing := fs.Bool("allow-missing", false, "do not fail when a baseline benchmark is absent from current")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *curPath == "" {
		return fmt.Errorf("compare requires -baseline and -current")
	}
	base, err := loadFile(*basePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cur, err := loadFile(*curPath)
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}
	report, failed := Compare(base, cur, *tol, *allowMissing)
	fmt.Print(report)
	if failed {
		return fmt.Errorf("benchmark gate failed (tolerance %.0f%%)", *tol*100)
	}
	return nil
}

func loadFile(path string) (File, error) {
	var f File
	raw, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, err
	}
	if f.Benchmarks == nil {
		return f, fmt.Errorf("%s: no benchmarks key", path)
	}
	return f, nil
}

// MarshalFile renders a File with sorted keys and trailing newline so the
// committed baseline diffs cleanly.
func MarshalFile(f File) ([]byte, error) {
	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(enc, '\n'), nil
}

// ParseStream consumes a `go test -json` event stream and aggregates all
// benchmark result lines into a File.
//
// test2json emits benchmark output as line *fragments* — the benchmark
// name is flushed in its own event ending in a tab, and the metrics arrive
// in a later event — so output is reassembled into whole lines per package
// before parsing.
func ParseStream(r io.Reader) (File, error) {
	file := File{SchemaVersion: 1, Benchmarks: map[string]Result{}}
	partial := map[string]string{} // package -> unterminated output fragment
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev testEvent
		if line[0] != '{' || json.Unmarshal(line, &ev) != nil {
			// Tolerate raw (non-JSON) bench output mixed into the stream.
			ev = testEvent{Action: "output", Output: string(line) + "\n"}
		}
		if ev.Action != "output" {
			continue
		}
		buf := partial[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			recordBenchLine(file.Benchmarks, ev.Package, buf[:nl])
			buf = buf[nl+1:]
		}
		partial[ev.Package] = buf
	}
	if err := sc.Err(); err != nil {
		return file, err
	}
	for pkg, buf := range partial {
		recordBenchLine(file.Benchmarks, pkg, buf)
	}
	return file, nil
}

func recordBenchLine(out map[string]Result, pkg, line string) {
	name, res, ok := parseBenchLine(line)
	if !ok {
		return
	}
	key := name
	if pkg != "" {
		key = pkg + "." + name
	}
	out[key] = mergeRuns(out[key], res)
}

// parseBenchLine parses one benchmark result line, e.g.
//
//	BenchmarkExpectedSeries/columnar-4   30  497968 ns/op  4.0e8 rows/s  8 B/op  1 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped from the name so results
// stay comparable across runner shapes.
func parseBenchLine(s string) (string, Result, bool) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "Benchmark") {
		return "", Result{}, false
	}
	fields := strings.Fields(s)
	// name, iterations, then (value, unit) pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", Result{}, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", Result{}, false
	}
	name := stripProcSuffix(fields[0])
	res := Result{Runs: 1}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			seen = true
		case "rows/s":
			res.RowsPerSec = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
	}
	if !seen {
		return "", Result{}, false
	}
	return name, res, true
}

// stripProcSuffix removes the trailing -N GOMAXPROCS marker, but only when
// N is numeric — "BenchmarkFoo/sub-case" keeps its name.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// mergeRuns folds a new run into the aggregate: min ns/op, min B/op, min
// allocs/op, max rows/s.
func mergeRuns(agg, run Result) Result {
	if agg.Runs == 0 {
		return run
	}
	agg.Runs += run.Runs
	agg.NsPerOp = math.Min(agg.NsPerOp, run.NsPerOp)
	agg.BytesPerOp = math.Min(agg.BytesPerOp, run.BytesPerOp)
	agg.AllocsPerOp = math.Min(agg.AllocsPerOp, run.AllocsPerOp)
	agg.RowsPerSec = math.Max(agg.RowsPerSec, run.RowsPerSec)
	return agg
}

// Compare renders a comparison report and reports whether the gate failed.
// Only benchmarks present in the baseline are gated.
func Compare(base, cur File, tolerance float64, allowMissing bool) (string, bool) {
	var b strings.Builder
	failed := false
	keys := make([]string, 0, len(base.Benchmarks))
	for k := range base.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	fmt.Fprintf(&b, "benchgate: %d gated benchmark(s), tolerance %.0f%%\n", len(keys), tolerance*100)
	for _, k := range keys {
		bl := base.Benchmarks[k]
		cl, ok := cur.Benchmarks[k]
		if !ok {
			if allowMissing {
				fmt.Fprintf(&b, "  SKIP  %s: missing from current run\n", k)
			} else {
				fmt.Fprintf(&b, "  FAIL  %s: missing from current run\n", k)
				failed = true
			}
			continue
		}
		delta := 0.0
		if bl.NsPerOp > 0 {
			delta = cl.NsPerOp/bl.NsPerOp - 1
		}
		status := "ok"
		if delta > tolerance {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(&b, "  %-4s  %s: %.0f -> %.0f ns/op (%+.1f%%)", status, k, bl.NsPerOp, cl.NsPerOp, delta*100)
		if bl.RowsPerSec > 0 && cl.RowsPerSec > 0 {
			fmt.Fprintf(&b, ", %.3g -> %.3g rows/s", bl.RowsPerSec, cl.RowsPerSec)
		}
		// Allocation gate: percentage tolerance plus one alloc of absolute
		// slack, so 0->1 churn on an otherwise-clean kernel is not fatal.
		if cl.AllocsPerOp > bl.AllocsPerOp*(1+tolerance)+1 {
			fmt.Fprintf(&b, ", allocs/op %v -> %v FAIL", bl.AllocsPerOp, cl.AllocsPerOp)
			failed = true
		} else if cl.AllocsPerOp != bl.AllocsPerOp {
			fmt.Fprintf(&b, ", allocs/op %v -> %v", bl.AllocsPerOp, cl.AllocsPerOp)
		}
		b.WriteByte('\n')
	}
	extra := 0
	for k := range cur.Benchmarks {
		if _, ok := base.Benchmarks[k]; !ok {
			extra++
		}
	}
	if extra > 0 {
		fmt.Fprintf(&b, "  %d new benchmark(s) not in baseline (not gated)\n", extra)
	}
	if failed {
		b.WriteString("RESULT: FAIL\n")
	} else {
		b.WriteString("RESULT: ok\n")
	}
	return b.String(), failed
}
