package main

import (
	"strings"
	"testing"
)

const sampleStream = `{"Action":"start","Package":"repro/internal/probdb"}
{"Action":"output","Package":"repro/internal/probdb","Output":"goos: linux\n"}
{"Action":"output","Package":"repro/internal/probdb","Output":"BenchmarkExpectedSeries/columnar-4 \t      30\t    500000 ns/op\t 400000000 rows/s\t       8 B/op\t       1 allocs/op\n"}
{"Action":"output","Package":"repro/internal/probdb","Output":"BenchmarkExpectedSeries/columnar-4 \t      30\t    480000 ns/op\t 410000000 rows/s\t       8 B/op\t       1 allocs/op\n"}
{"Action":"output","Package":"repro/internal/probdb","Output":"BenchmarkExpectedSeries/indexed-4 \t      10\t   1200000 ns/op\t 170000000 rows/s\t    1376 B/op\t      23 allocs/op\n"}
{"Action":"output","Package":"repro/internal/probdb","Output":"ok  \trepro/internal/probdb\t2.1s\n"}
{"Action":"pass","Package":"repro/internal/probdb"}
`

func TestParseStreamAggregatesRuns(t *testing.T) {
	f, err := ParseStream(strings.NewReader(sampleStream))
	if err != nil {
		t.Fatal(err)
	}
	if f.SchemaVersion != 1 {
		t.Fatalf("schema_version = %d", f.SchemaVersion)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks: %v", len(f.Benchmarks), f.Benchmarks)
	}
	key := "repro/internal/probdb.BenchmarkExpectedSeries/columnar"
	r, ok := f.Benchmarks[key]
	if !ok {
		t.Fatalf("missing key %q; have %v", key, f.Benchmarks)
	}
	if r.Runs != 2 {
		t.Fatalf("runs = %d, want 2", r.Runs)
	}
	if r.NsPerOp != 480000 { // min of runs
		t.Fatalf("ns/op = %v, want min 480000", r.NsPerOp)
	}
	if r.RowsPerSec != 410000000 { // max of runs
		t.Fatalf("rows/s = %v, want max 410000000", r.RowsPerSec)
	}
	if r.AllocsPerOp != 1 || r.BytesPerOp != 8 {
		t.Fatalf("allocs=%v bytes=%v", r.AllocsPerOp, r.BytesPerOp)
	}
}

// test2json flushes the benchmark name and its metrics as separate output
// events; the parser must stitch fragments back into whole lines, per
// package, before matching.
func TestParseStreamStitchesFragments(t *testing.T) {
	stream := `{"Action":"output","Package":"p1","Output":"BenchmarkSplit/columnar         \t"}
{"Action":"output","Package":"p2","Output":"BenchmarkOther-4 \t 10\t 99 ns/op\n"}
{"Action":"output","Package":"p1","Output":"      20\t    350000 ns/op\t 500000000 rows/s\t       8 B/op\t       1 allocs/op\n"}
`
	f, err := ParseStream(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := f.Benchmarks["p1.BenchmarkSplit/columnar"]
	if !ok {
		t.Fatalf("fragmented benchmark not stitched: %v", f.Benchmarks)
	}
	if r.NsPerOp != 350000 || r.RowsPerSec != 500000000 {
		t.Fatalf("stitched metrics wrong: %+v", r)
	}
	if o, ok := f.Benchmarks["p2.BenchmarkOther"]; !ok || o.NsPerOp != 99 {
		t.Fatalf("interleaved package broken: %v", f.Benchmarks)
	}
}

func TestParseStreamToleratesRawBenchOutput(t *testing.T) {
	raw := "BenchmarkScan-2 \t 100 \t 12345 ns/op\nnot a bench line\n"
	f, err := ParseStream(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := f.Benchmarks["BenchmarkScan"]
	if !ok || r.NsPerOp != 12345 {
		t.Fatalf("raw line not parsed: %v", f.Benchmarks)
	}
}

func TestParseBenchLineRejectsNonBench(t *testing.T) {
	for _, s := range []string{
		"ok  \trepro/internal/probdb\t2.1s",
		"BenchmarkNoMetrics-4",
		"Benchmark words only here",
		"goos: linux",
	} {
		if name, _, ok := parseBenchLine(s); ok {
			t.Fatalf("parseBenchLine(%q) accepted as %q", s, name)
		}
	}
}

func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-4":          "BenchmarkFoo",
		"BenchmarkFoo/sub-16":     "BenchmarkFoo/sub",
		"BenchmarkFoo/sub-case":   "BenchmarkFoo/sub-case",
		"BenchmarkFoo":            "BenchmarkFoo",
		"BenchmarkFoo/columnar-1": "BenchmarkFoo/columnar",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func mkFile(entries map[string]Result) File {
	return File{SchemaVersion: 1, Benchmarks: entries}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := mkFile(map[string]Result{"a.BenchmarkX": {NsPerOp: 1000, AllocsPerOp: 1, Runs: 5}})
	cur := mkFile(map[string]Result{"a.BenchmarkX": {NsPerOp: 1200, AllocsPerOp: 1, Runs: 5}})
	report, failed := Compare(base, cur, 0.25, false)
	if failed {
		t.Fatalf("gate failed within tolerance:\n%s", report)
	}
	if !strings.Contains(report, "RESULT: ok") {
		t.Fatalf("report missing ok marker:\n%s", report)
	}
}

func TestCompareFailsOnSlowdown(t *testing.T) {
	base := mkFile(map[string]Result{"a.BenchmarkX": {NsPerOp: 1000, Runs: 5}})
	cur := mkFile(map[string]Result{"a.BenchmarkX": {NsPerOp: 2000, Runs: 5}})
	report, failed := Compare(base, cur, 0.25, false)
	if !failed {
		t.Fatalf("2x slowdown passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Fatalf("report missing FAIL marker:\n%s", report)
	}
}

func TestCompareAllocGate(t *testing.T) {
	base := mkFile(map[string]Result{"a.BenchmarkX": {NsPerOp: 1000, AllocsPerOp: 0, Runs: 5}})
	// 0 -> 1 alloc: absolute slack of one keeps this green.
	cur := mkFile(map[string]Result{"a.BenchmarkX": {NsPerOp: 1000, AllocsPerOp: 1, Runs: 5}})
	if report, failed := Compare(base, cur, 0.25, false); failed {
		t.Fatalf("0->1 alloc churn tripped the gate:\n%s", report)
	}
	// 0 -> 5 allocs: a real regression.
	cur = mkFile(map[string]Result{"a.BenchmarkX": {NsPerOp: 1000, AllocsPerOp: 5, Runs: 5}})
	if report, failed := Compare(base, cur, 0.25, false); !failed {
		t.Fatalf("0->5 alloc regression passed the gate:\n%s", report)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := mkFile(map[string]Result{"a.BenchmarkX": {NsPerOp: 1000, Runs: 5}})
	cur := mkFile(map[string]Result{"a.BenchmarkY": {NsPerOp: 1000, Runs: 5}})
	if _, failed := Compare(base, cur, 0.25, false); !failed {
		t.Fatal("missing baseline benchmark passed the gate")
	}
	report, failed := Compare(base, cur, 0.25, true)
	if failed {
		t.Fatalf("-allow-missing still failed:\n%s", report)
	}
	if !strings.Contains(report, "SKIP") {
		t.Fatalf("report missing SKIP marker:\n%s", report)
	}
	if !strings.Contains(report, "1 new benchmark(s)") {
		t.Fatalf("report missing new-benchmark note:\n%s", report)
	}
}

func TestMarshalFileRoundTrip(t *testing.T) {
	f := mkFile(map[string]Result{"a.BenchmarkX": {NsPerOp: 1000, RowsPerSec: 2e8, Runs: 5}})
	enc, err := MarshalFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if enc[len(enc)-1] != '\n' {
		t.Fatal("marshaled file missing trailing newline")
	}
	if !strings.Contains(string(enc), "\"rows_per_sec\"") {
		t.Fatalf("rows_per_sec missing from output:\n%s", enc)
	}
}
