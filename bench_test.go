// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per experiment, at the Quick scale so `go test -bench=.`
// stays tractable), plus ablation benchmarks for the design decisions called
// out in DESIGN.md: sigma-cache vs naive generation, B-tree vs sorted-slice
// lookup, the Successive Variance Reduction filter's incremental
// leave-one-out identities vs naive recomputation, and the per-metric
// inference cost.
package repro_test

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"repro/internal/arma"
	"repro/internal/btree"
	"repro/internal/clean"
	"repro/internal/dataset"
	"repro/internal/density"
	"repro/internal/experiments"
	"repro/internal/garch"
	"repro/internal/stat"
	"repro/internal/view"
)

// --- One benchmark per table / figure -------------------------------------

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14a(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14b(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: view generation, naive vs sigma-cache (Fig. 14a's core) ----

func fig14TuplesForBench(b *testing.B, n int) []view.Tuple {
	b.Helper()
	campus := dataset.Campus(dataset.CampusConfig{N: n + 100})
	metric, err := density.NewVariableThresholding(1, 0)
	if err != nil {
		b.Fatal(err)
	}
	tuples, err := view.TuplesFromSeries(campus, metric, 90, 91, int64(90+n))
	if err != nil {
		b.Fatal(err)
	}
	return tuples[:n]
}

func BenchmarkViewGenerationNaive(b *testing.B) {
	tuples := fig14TuplesForBench(b, 2000)
	builder, err := view.NewBuilder(view.Omega{Delta: 0.05, N: 300})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := builder.Generate(tuples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViewGenerationSigmaCache(b *testing.B) {
	tuples := fig14TuplesForBench(b, 2000)
	builder, err := view.NewBuilder(view.Omega{Delta: 0.05, N: 300})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := builder.AttachCache(tuples, 0.01, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := builder.Generate(tuples); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel view build: worker pool vs the sequential benchmarks above ---

// BenchmarkViewBuildSequential is the explicit-knob twin of
// BenchmarkViewGenerationNaive (Parallelism 1), the baseline for
// BenchmarkViewBuildParallel.
func BenchmarkViewBuildSequential(b *testing.B) {
	benchViewBuild(b, 1, false)
}

// BenchmarkViewBuildParallel fans the same workload out across all cores;
// on a 4+ core machine it runs >= 2x faster than the sequential build and
// produces identical rows (see view.TestParallelMatchesSequential).
func BenchmarkViewBuildParallel(b *testing.B) {
	benchViewBuild(b, runtime.GOMAXPROCS(0), false)
}

func BenchmarkViewBuildSequentialSigmaCache(b *testing.B) {
	benchViewBuild(b, 1, true)
}

func BenchmarkViewBuildParallelSigmaCache(b *testing.B) {
	benchViewBuild(b, runtime.GOMAXPROCS(0), true)
}

func benchViewBuild(b *testing.B, parallelism int, cache bool) {
	b.Helper()
	tuples := fig14TuplesForBench(b, 2000)
	builder, err := view.NewBuilder(view.Omega{Delta: 0.05, N: 300})
	if err != nil {
		b.Fatal(err)
	}
	builder.Parallelism = parallelism
	if cache {
		if _, err := builder.AttachCache(tuples, 0.01, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := builder.Generate(tuples); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: B-tree vs sorted-slice floor lookup (the sigma-cache's
// former container; the cache now uses O(1) geometric rung addressing,
// so this compares the standalone internal/btree against a sorted slice) -

func BenchmarkBTreeFloorLookup(b *testing.B) {
	tree, err := btree.New[int](btree.DefaultDegree)
	if err != nil {
		b.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		tree.Insert(float64(i), i)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := rng.Float64() * n
		if _, _, ok := tree.Floor(q); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkSortedSliceFloorLookup(b *testing.B) {
	const n = 1000
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = float64(i)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := rng.Float64() * n
		idx := sort.SearchFloat64s(keys, q)
		if idx == 0 && keys[0] > q {
			b.Fatal("miss")
		}
	}
}

// --- Ablation: SVR filter, incremental identities vs naive recompute ------

func dirtyWindow(n int, spikes int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = 20 + 0.3*rng.NormFloat64()
	}
	for s := 0; s < spikes; s++ {
		vs[rng.Intn(n)] = 500
	}
	return vs
}

func BenchmarkSVRFilterIncremental(b *testing.B) {
	vs := dirtyWindow(256, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clean.SVRFilter(vs, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// naiveSVRFilter is the cubic-time reference implementation: it recomputes
// every leave-one-out variance from scratch (what Algorithm 2's Steps 8-9
// avoid).
func naiveSVRFilter(vs []float64, svMax float64) []float64 {
	out := make([]float64, len(vs))
	copy(out, vs)
	replaced := map[int]bool{}
	for iter := 0; iter < len(out)-2; iter++ {
		if stat.Variance(out) <= svMax {
			break
		}
		bestVar := math.Inf(1)
		bestIdx := -1
		scratch := make([]float64, 0, len(out)-1)
		for k := range out {
			if replaced[k] {
				continue
			}
			scratch = scratch[:0]
			scratch = append(scratch, out[:k]...)
			scratch = append(scratch, out[k+1:]...)
			if v := stat.Variance(scratch); v < bestVar {
				bestVar = v
				bestIdx = k
			}
		}
		if bestIdx < 0 {
			break
		}
		switch {
		case bestIdx > 0 && bestIdx < len(out)-1:
			out[bestIdx] = (out[bestIdx-1] + out[bestIdx+1]) / 2
		case bestIdx == 0:
			out[0] = out[1]
		default:
			out[len(out)-1] = out[len(out)-2]
		}
		replaced[bestIdx] = true
	}
	return out
}

func BenchmarkSVRFilterNaiveRecompute(b *testing.B) {
	vs := dirtyWindow(256, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveSVRFilter(vs, 0.5)
	}
}

// --- Ablation: AR estimation, conditional least squares vs Yule-Walker ----

func BenchmarkARFitCLS(b *testing.B) {
	campus := dataset.Campus(dataset.CampusConfig{N: 300})
	window := campus.Values()[:180]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arma.Fit(window, 2, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkARFitYuleWalker(b *testing.B) {
	campus := dataset.Campus(dataset.CampusConfig{N: 300})
	window := campus.Values()[:180]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arma.FitYuleWalker(window, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: GARCH QMLE with and without variance targeting -------------

func garchInnovations(b *testing.B) []float64 {
	b.Helper()
	campus := dataset.Campus(dataset.CampusConfig{N: 300})
	window := campus.Values()[:180]
	model, err := arma.Fit(window, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	return model.ResidualsOf(window)[1:]
}

func BenchmarkGARCHFitVarianceTargeting(b *testing.B) {
	a := garchInnovations(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := garch.Fit(a, 1, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGARCHFitNoVarianceTargeting(b *testing.B) {
	a := garchInnovations(b)
	settings := &garch.FitSettings{NoVarianceTargeting: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := garch.Fit(a, 1, 1, settings); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Per-metric inference cost (the Fig. 11 microscopic view) -------------

func benchMetricInfer(b *testing.B, m density.Metric) {
	b.Helper()
	campus := dataset.Campus(dataset.CampusConfig{N: 300})
	window := campus.Values()[:90]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Infer(window); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferUT(b *testing.B) {
	m, err := density.NewUniformThresholding(1, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchMetricInfer(b, m)
}

func BenchmarkInferVT(b *testing.B) {
	m, err := density.NewVariableThresholding(1, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchMetricInfer(b, m)
}

func BenchmarkInferARMAGARCH(b *testing.B) {
	m, err := density.NewARMAGARCH(1, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchMetricInfer(b, m)
}

func BenchmarkInferKalmanGARCH(b *testing.B) {
	benchMetricInfer(b, density.NewKalmanGARCH())
}

func BenchmarkInferCGARCH(b *testing.B) {
	campus := dataset.Campus(dataset.CampusConfig{N: 300})
	svMax, err := clean.LearnSVMax(campus.Values()[:90], 8)
	if err != nil {
		b.Fatal(err)
	}
	inner, err := density.NewARMAGARCH(1, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchMetricInfer(b, &clean.Metric{Inner: inner, SVMax: svMax})
}
